package engine

// Sharded mode: the conservative parallel discrete-event engine.
//
// Shard(n, lookahead) partitions the pending-event set into n per-shard
// queues. The run loop then proceeds in conservative windows: with T the
// earliest pending timestamp anywhere, every event in (T, T+lookahead] is
// already scheduled — lookahead is the machine's minimum cross-component
// latency, so nothing executed at or after T can schedule below the
// horizon of the *next* window. Each window, every shard drains its
// inter-shard mailbox into its queue and extracts the batch of events with
// timestamps <= T+lookahead (both are pure heap maintenance and run in
// parallel on the Runner); the coordinator then merges the sorted batches
// by the global (time, seq) order and executes every event body itself.
//
// That single-executor merge is what makes byte-identity a construction
// rather than a test outcome: event bodies run in exactly the order the
// sequential engine would run them, so seq assignment, telemetry samples,
// fault-counter keys and every downstream byte match the unsharded engine
// at any shard/worker/GOMAXPROCS count. The parallelism harvests only the
// heap work — pushes (mailbox drains) and pops (batch extraction) — which
// is the queue-maintenance fraction of the replay hot path.
//
// Events scheduled during a window land below or above the horizon:
// above-horizon events append to the owning shard's mailbox (cheap, and
// parallelized into heap pushes next window); at-or-below-horizon events
// go to a coordinator-owned overflow heap merged alongside the batches, so
// in-window causality chains execute in correct global order.

import (
	"math"

	"repro/internal/units"
)

// timeMax is the end of representable simulated time, used as the
// "no pending event" sentinel in per-shard minimum tracking.
const timeMax = units.Time(math.MaxInt64)

// Runner dispatches one window of per-shard work. Do must invoke task(k)
// exactly once for every shard index k in [0, n) and return only after all
// invocations complete, with the usual fork-join memory ordering (caller
// writes before Do are visible to tasks; task writes are visible after Do
// returns). par.Pool satisfies this when its worker count equals the shard
// count.
type Runner interface {
	Do(task func(k int))
}

// shardState is the sharded engine's working set. All fields are owned by
// the coordinating goroutine except the per-shard slots of queues, boxes,
// boxMin, heads, batch and cursor, which shard k's window task owns for
// the duration of one dispatch (the Runner's fork-join barrier orders the
// handoff).
type shardState struct {
	n    int        // shard count
	look units.Time // conservative lookahead (> 0)

	runner Runner // nil: windows run inline on the coordinator

	queues []queue      // per-shard pending events beyond the last horizon
	boxes  [][]item     // per-shard mailboxes: scheduled, not yet in queues
	boxMin []units.Time // min timestamp in boxes[k]; timeMax when empty
	heads  []units.Time // min timestamp in queues[k]; timeMax when empty
	batch  [][]item     // per-shard sorted events extracted for this window
	cursor []int        // merge position into batch[k]

	overflow queue // in-window schedules at or below the horizon
	task     func(int)

	cur     int        // shard of the currently executing event (At routing)
	horizon units.Time // end of the current window
	active  bool       // inside a window (schedule() routes by horizon)
	nq      int        // total pending events across queues, boxes, batches, overflow
}

// Shard switches a fresh simulator into sharded mode with n shards and the
// given conservative lookahead. It must be called before any event is
// scheduled or executed: sharding an in-flight simulation would have to
// re-partition the queue and is never needed. A sharded simulator runs
// only through RunBudget; Run, RunUntil and Step panic.
func (s *Sim) Shard(n int, lookahead units.Time) {
	if s.sh != nil {
		panic("engine: Shard on an already sharded simulator")
	}
	if n <= 0 {
		panic("engine: shard count must be positive")
	}
	if lookahead <= 0 {
		panic("engine: lookahead must be positive")
	}
	if s.events.len() > 0 || s.now != 0 || s.nRun != 0 {
		panic("engine: Shard requires a fresh simulator")
	}
	sh := &shardState{
		n:      n,
		look:   lookahead,
		queues: make([]queue, n),
		boxes:  make([][]item, n),
		boxMin: make([]units.Time, n),
		heads:  make([]units.Time, n),
		batch:  make([][]item, n),
		cursor: make([]int, n),
	}
	for k := 0; k < n; k++ {
		sh.boxMin[k] = timeMax
		sh.heads[k] = timeMax
	}
	sh.task = sh.window
	s.sh = sh
}

// Shards returns the shard count, or 0 for an unsharded simulator.
func (s *Sim) Shards() int {
	if s.sh == nil {
		return 0
	}
	return s.sh.n
}

// SetShardRunner installs the parallel dispatcher for window work. With no
// runner (the default) windows run inline on the coordinating goroutine —
// same results, no parallelism — so a runner is purely a performance
// choice and callers own its lifecycle.
func (s *Sim) SetShardRunner(r Runner) {
	if s.sh == nil {
		panic("engine: SetShardRunner on an unsharded simulator")
	}
	s.sh.runner = r
}

// reserve divides a capacity hint evenly across the shard queues.
func (sh *shardState) reserve(n int) {
	per := (n + sh.n - 1) / sh.n
	for k := range sh.queues {
		q := &sh.queues[k]
		if per <= cap(q.a) {
			continue
		}
		a := make([]item, len(q.a), per)
		copy(a, q.a)
		q.a = a
	}
}

// schedule routes a new event: during a window, at-or-below-horizon events
// join the coordinator's overflow heap (they must execute this window, in
// merged order); everything else appends to the owning shard's mailbox for
// the next dispatch to push in parallel.
//
//nmlint:hotpath
func (sh *shardState) schedule(it item, owner int) {
	sh.nq++
	if sh.active && it.at <= sh.horizon {
		sh.overflow.push(it)
		return
	}
	//nmlint:ignore hotpath amortized growth; mailboxes keep their backing arrays across windows
	sh.boxes[owner] = append(sh.boxes[owner], it)
	if it.at < sh.boxMin[owner] {
		sh.boxMin[owner] = it.at
	}
}

// window is the per-shard dispatch task: drain the mailbox into the queue,
// then extract this window's sorted batch. Runs concurrently with the
// other shards' windows, touching only shard k's slots.
//
//nmlint:hotpath
func (sh *shardState) window(k int) {
	q := &sh.queues[k]
	box := sh.boxes[k]
	for i, it := range box {
		q.push(it)
		box[i] = item{} // drop the closure reference from the retained array
	}
	sh.boxes[k] = box[:0]
	sh.boxMin[k] = timeMax
	b := sh.batch[k][:0]
	for {
		head, ok := q.peek()
		if !ok || head.at > sh.horizon {
			break
		}
		q.pop()
		//nmlint:ignore hotpath amortized growth; batch buffers keep their backing arrays across windows
		b = append(b, head)
	}
	sh.batch[k] = b
	sh.cursor[k] = 0
	if head, ok := q.peek(); ok {
		sh.heads[k] = head.at
	} else {
		sh.heads[k] = timeMax
	}
}

// dispatch runs every shard's window task, in parallel when a runner is
// installed. Not a hot path: it is called once per conservative window,
// not per event, and the runner handoff is channel-based by design.
func (sh *shardState) dispatch() {
	if sh.runner != nil {
		sh.runner.Do(sh.task)
		return
	}
	for k := 0; k < sh.n; k++ {
		sh.window(k)
	}
}

// runSharded is RunBudget's sharded body: the conservative window loop.
// Budget and stall semantics match the sequential path exactly — the
// budget is checked before each event body, the abort carries the true
// pending count, and a later RunBudget call resumes mid-window.
func (s *Sim) runSharded(maxEvents uint64) (units.Time, error) {
	sh := s.sh
	var ran uint64
	if sh.active {
		// A previous call aborted on budget mid-window; finish that window
		// before opening a new one.
		if err := s.execWindow(maxEvents, &ran); err != nil {
			return s.now, err
		}
		sh.active = false
	}
	for sh.nq > 0 {
		t := timeMax
		for k := 0; k < sh.n; k++ {
			if sh.heads[k] < t {
				t = sh.heads[k]
			}
			if sh.boxMin[k] < t {
				t = sh.boxMin[k]
			}
		}
		horizon := t + sh.look
		if horizon < t { // saturate instead of wrapping past the end of time
			horizon = timeMax
		}
		sh.horizon = horizon
		sh.dispatch()
		sh.active = true
		if err := s.execWindow(maxEvents, &ran); err != nil {
			return s.now, err
		}
		sh.active = false
	}
	if st := s.Stalled(); st != nil {
		return s.now, st
	}
	return s.now, nil
}

// execWindow merges the shards' sorted batches and the overflow heap by
// the global (time, seq) order and fires each event — the sequential
// engine's execution order, reproduced exactly. K is small (shard count),
// so the linear scan over batch heads beats a merge heap.
//
//nmlint:hotpath
func (s *Sim) execWindow(maxEvents uint64, ran *uint64) error {
	sh := s.sh
	for {
		best := -1
		var bi item
		for k := 0; k < sh.n; k++ {
			if sh.cursor[k] < len(sh.batch[k]) {
				it := sh.batch[k][sh.cursor[k]]
				if best < 0 || before(it, bi) {
					best, bi = k, it
				}
			}
		}
		fromOverflow := false
		if ov, ok := sh.overflow.peek(); ok && (best < 0 || before(ov, bi)) {
			fromOverflow, bi = true, ov
		}
		if best < 0 && !fromOverflow {
			return nil
		}
		if *ran >= maxEvents {
			return &BudgetError{MaxEvents: maxEvents, LastEventAt: s.lastAt, Pending: sh.nq}
		}
		if fromOverflow {
			sh.overflow.pop()
			// sh.cur keeps the previous event's shard: overflow events have
			// no batch home, and routing only balances load, never order.
		} else {
			sh.batch[best][sh.cursor[best]] = item{} // drop the closure reference
			sh.cursor[best]++
			sh.cur = best
		}
		sh.nq--
		s.fire(bi)
		*ran++
	}
}
