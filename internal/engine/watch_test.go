package engine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/units"
)

func TestStalledQuiescent(t *testing.T) {
	s := New()
	s.Watch("dev", func() units.Time { return 0 }, func() int { return 0 })
	s.At(10, func() {})
	if _, err := s.RunBudget(100); err != nil {
		t.Fatalf("RunBudget: %v", err)
	}
	if st := s.Stalled(); st != nil {
		t.Fatalf("Stalled on quiescent sim: %v", st)
	}
}

func TestStalledOutstanding(t *testing.T) {
	s := New()
	pending := 2
	s.Watch("core[3]", nil, func() int { return pending })
	s.At(5, func() {})
	_, err := s.RunBudget(100)
	var st *StallError
	if !errors.As(err, &st) {
		t.Fatalf("RunBudget = %v, want StallError", err)
	}
	if len(st.Stalls) != 1 || st.Stalls[0].Component != "core[3]" || st.Stalls[0].Outstanding != 2 {
		t.Fatalf("stalls = %+v, want core[3] with 2 outstanding", st.Stalls)
	}
	if st.Now != 5 || st.LastEventAt != 5 || st.Executed != 1 {
		t.Fatalf("context = %+v, want Now=5 LastEventAt=5 Executed=1", st)
	}
	if !strings.Contains(st.Error(), "core[3]") {
		t.Fatalf("Error() = %q, want the component named", st.Error())
	}
	pending = 0
	if err := s.Stalled(); err != nil {
		t.Fatalf("Stalled after drain-out: %v", err)
	}
}

func TestStalledBusyHorizon(t *testing.T) {
	// A resource acquired past the last event: the busy horizon extends
	// beyond the drain time, which must be reported.
	s := New()
	r := NewResource(s, units.BytesPerSecond(1*units.GiB))
	s.Watch("far", r.BusyUntil, nil)
	s.At(0, func() { r.Acquire(1 * units.MiB) })
	_, err := s.RunBudget(10)
	var st *StallError
	if !errors.As(err, &st) {
		t.Fatalf("RunBudget = %v, want StallError (busy horizon %v past drain)", err, r.BusyUntil())
	}
	if st.Stalls[0].Component != "far" || st.Stalls[0].BusyUntil != r.BusyUntil() {
		t.Fatalf("stalls = %+v", st.Stalls)
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	s := New()
	// A self-rescheduling event: the classic runaway schedule.
	var tick func()
	tick = func() { s.After(1, tick) }
	s.At(0, tick)
	_, err := s.RunBudget(1000)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("RunBudget = %v, want BudgetError", err)
	}
	if be.MaxEvents != 1000 || be.Pending == 0 {
		t.Fatalf("budget error = %+v", be)
	}
	if s.Executed() != 1000 {
		t.Fatalf("executed %d events, want exactly the budget", s.Executed())
	}
	if !strings.Contains(be.Error(), "1000") {
		t.Fatalf("Error() = %q", be.Error())
	}
}

func TestRunBudgetCountsPerCall(t *testing.T) {
	// The budget is per call, not cumulative over the sim's lifetime.
	s := New()
	for i := 0; i < 5; i++ {
		s.At(units.Time(i), func() {})
	}
	if _, err := s.RunBudget(5); err != nil {
		t.Fatalf("first RunBudget: %v", err)
	}
	for i := 10; i < 15; i++ {
		s.At(units.Time(i), func() {})
	}
	if _, err := s.RunBudget(5); err != nil {
		t.Fatalf("second RunBudget must get a fresh budget: %v", err)
	}
}

func TestAcquireAtFactor(t *testing.T) {
	s := New()
	r := NewResource(s, units.BytesPerSecond(1*units.GiB))
	base := r.AcquireAt(0, 64*units.KiB)

	s2 := New()
	r2 := NewResource(s2, units.BytesPerSecond(1*units.GiB))
	quarter := r2.AcquireAtFactor(0, 64*units.KiB, 4)
	if quarter != 4*base {
		t.Fatalf("factor 4 completion %v, want 4x the unit factor's %v", quarter, base)
	}
	if r2.Bytes() != r.Bytes() || r2.Served() != r.Served() {
		t.Fatal("degradation must stretch occupancy, not change accounting")
	}

	// Factor 1 is bit-identical to AcquireAt — the seed-0 anchor.
	s3 := New()
	r3 := NewResource(s3, units.BytesPerSecond(1*units.GiB))
	if got := r3.AcquireAtFactor(0, 64*units.KiB, 1); got != base {
		t.Fatalf("factor 1 completion %v, want %v", got, base)
	}
}

func TestAcquireAtFactorPanicsBelowOne(t *testing.T) {
	s := New()
	r := NewResource(s, units.BytesPerSecond(1*units.GiB))
	defer func() {
		if recover() == nil {
			t.Fatal("factor 0 must panic")
		}
	}()
	r.AcquireAtFactor(0, 64, 0)
}
