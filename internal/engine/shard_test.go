package engine

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/par"
	"repro/internal/units"
	"repro/internal/xrand"
)

// stormLog records an execution trace precise enough that equality implies
// byte-identity of anything derived from the run: per event it captures
// (time, id); for the run it captures sampler boundaries and final clocks.
type stormLog struct {
	events  []string
	samples []units.Time
}

// scheduleStorm drives s through a seed-determined cascade: n root events,
// each of which schedules a few children at pseudo-random offsets — some
// zero-delay (FIFO tie-break stress), some inside a typical lookahead
// window, some far beyond it — across pseudo-random shards when sharded.
// The cascade is a pure function of the seed and the engine's execution
// order, so two engines that execute in the same order produce equal logs.
func scheduleStorm(s *Sim, seed uint64, n, shards int) *stormLog {
	home := shards
	if home < 1 {
		home = 1
	}
	log := &stormLog{}
	var grow func(id, depth int) Event
	grow = func(id, depth int) Event {
		return func() {
			log.events = append(log.events, fmt.Sprintf("%d@%v", id, s.Now()))
			if depth >= 3 {
				return
			}
			r := xrand.New(seed + uint64(id))
			kids := int(r.Uint64n(3))
			for c := 0; c < kids; c++ {
				kid := id*7 + c + 1
				d := units.Time(r.Uint64n(120)) // 0..119ns: straddles a 40ns-ish lookahead
				cross := r.Uint64n(2) == 0      // drawn unconditionally: same stream in both modes
				sidx := int(r.Uint64n(64)) % home
				if cross {
					s.AtShard(sidx, s.Now()+d, grow(kid, depth+1))
				} else {
					s.After(d, grow(kid, depth+1))
				}
			}
		}
	}
	r := xrand.New(seed)
	for i := 0; i < n; i++ {
		at := units.Time(r.Uint64n(500))
		s.AtShard(i%home, at, grow(i+1000, 0))
	}
	return log
}

func runStorm(t *testing.T, shards, workers int, seed uint64) (*stormLog, *Sim) {
	t.Helper()
	s := New()
	if shards > 0 {
		s.Shard(shards, 40)
	}
	var pool *par.Pool
	if shards > 0 && workers > 1 {
		pool = par.NewPool(shards)
		defer pool.Close()
		s.SetShardRunner(pool)
	}
	log := scheduleStorm(s, seed, 32, shards)
	s.SetSampler(100, func(b units.Time) { log.samples = append(log.samples, b) })
	if _, err := s.RunBudget(1 << 20); err != nil {
		t.Fatalf("RunBudget(shards=%d): %v", shards, err)
	}
	return log, s
}

// TestShardedMatchesSequential is the engine-level identity check: the
// sharded engine must execute the same cascade in the same order with the
// same sampler boundaries as the sequential engine, for every shard count
// and with or without a parallel runner.
func TestShardedMatchesSequential(t *testing.T) {
	for _, seed := range []uint64{1, 7, 99} {
		ref, refSim := runStorm(t, 0, 1, seed)
		for _, shards := range []int{1, 2, 3, 4, 8} {
			for _, workers := range []int{1, 2} {
				got, gotSim := runStorm(t, shards, workers, seed)
				if len(got.events) != len(ref.events) {
					t.Fatalf("seed %d shards %d workers %d: %d events, want %d",
						seed, shards, workers, len(got.events), len(ref.events))
				}
				for i := range ref.events {
					if got.events[i] != ref.events[i] {
						t.Fatalf("seed %d shards %d workers %d: event %d = %q, want %q",
							seed, shards, workers, i, got.events[i], ref.events[i])
					}
				}
				if fmt.Sprint(got.samples) != fmt.Sprint(ref.samples) {
					t.Fatalf("seed %d shards %d workers %d: samples %v, want %v",
						seed, shards, workers, got.samples, ref.samples)
				}
				if gotSim.Now() != refSim.Now() || gotSim.Executed() != refSim.Executed() {
					t.Fatalf("seed %d shards %d workers %d: final (now=%v, executed=%d), want (%v, %d)",
						seed, shards, workers, gotSim.Now(), gotSim.Executed(), refSim.Now(), refSim.Executed())
				}
			}
		}
	}
}

// TestShardedBudgetMatchesSequential checks that the budget abort carries
// identical observables (Now, LastEventAt, Pending) in both modes and that
// a follow-up RunBudget resumes a sharded run mid-window to the same final
// state as the sequential engine.
func TestShardedBudgetMatchesSequential(t *testing.T) {
	for _, budget := range []uint64{0, 1, 17, 64} {
		seq := New()
		scheduleStorm(seq, 42, 32, 0)
		_, seqErr := seq.RunBudget(budget)
		shr := New()
		shr.Shard(4, 40)
		scheduleStorm(shr, 42, 32, 4)
		_, shrErr := shr.RunBudget(budget)

		var seqBE, shrBE *BudgetError
		if !errors.As(seqErr, &seqBE) || !errors.As(shrErr, &shrBE) {
			t.Fatalf("budget %d: errors (%v, %v), want BudgetError from both", budget, seqErr, shrErr)
		}
		if shr.Now() != seq.Now() || shrBE.LastEventAt != seqBE.LastEventAt || shrBE.Pending != seqBE.Pending {
			t.Fatalf("budget %d: sharded abort (now=%v, last=%v, pending=%d), want (%v, %v, %d)",
				budget, shr.Now(), shrBE.LastEventAt, shrBE.Pending,
				seq.Now(), seqBE.LastEventAt, seqBE.Pending)
		}
		if shr.Pending() != seq.Pending() {
			t.Fatalf("budget %d: Pending() %d, want %d", budget, shr.Pending(), seq.Pending())
		}
		// Resume both to completion: the sharded engine finishes its
		// interrupted window first, then keeps windowing.
		if _, err := seq.RunBudget(1 << 20); err != nil {
			t.Fatalf("sequential resume: %v", err)
		}
		if _, err := shr.RunBudget(1 << 20); err != nil {
			t.Fatalf("sharded resume: %v", err)
		}
		if shr.Now() != seq.Now() || shr.Executed() != seq.Executed() || shr.Pending() != 0 {
			t.Fatalf("budget %d resume: sharded (now=%v, executed=%d, pending=%d), want (%v, %d, 0)",
				budget, shr.Now(), shr.Executed(), shr.Pending(), seq.Now(), seq.Executed())
		}
	}
}

// TestShardedStallDetection: the watchdog cross-check runs on sharded
// drain exactly as on sequential drain.
func TestShardedStallDetection(t *testing.T) {
	s := New()
	s.Shard(2, 10)
	out := 1
	s.Watch("dangling", nil, func() int { return out })
	s.AtShard(1, 5, func() { out = 1 }) // completes but leaves work outstanding
	_, err := s.RunBudget(100)
	var st *StallError
	if !errors.As(err, &st) {
		t.Fatalf("RunBudget = %v, want StallError", err)
	}
	if len(st.Stalls) != 1 || st.Stalls[0].Component != "dangling" {
		t.Fatalf("stalls = %+v, want one for dangling", st.Stalls)
	}
}

// TestShardedSamplerMidRunInstall: installing the sampler after time has
// advanced starts at the next boundary >= Now() in both modes (the
// SetSampler regression), not at boundary zero.
func TestShardedSamplerMidRunInstall(t *testing.T) {
	for _, shards := range []int{0, 2} {
		s := New()
		if shards > 0 {
			s.Shard(shards, 10)
		}
		s.At(250, func() {})
		if _, err := s.RunBudget(10); err != nil {
			t.Fatal(err)
		}
		var got []units.Time
		s.SetSampler(100, func(b units.Time) { got = append(got, b) })
		s.At(460, func() {})
		if _, err := s.RunBudget(10); err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprint([]units.Time{300, 400})
		if fmt.Sprint(got) != want {
			t.Fatalf("shards=%d: mid-run sampler boundaries %v, want %v", shards, got, want)
		}
	}
}

// TestSamplerInstallOnBoundary: a mid-run install with Now() exactly on a
// boundary must still sample that boundary (state at it is still current).
func TestSamplerInstallOnBoundary(t *testing.T) {
	s := New()
	s.At(200, func() {})
	if _, err := s.RunBudget(10); err != nil {
		t.Fatal(err)
	}
	var got []units.Time
	s.SetSampler(100, func(b units.Time) { got = append(got, b) })
	s.At(210, func() {})
	if _, err := s.RunBudget(10); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint([]units.Time{200}) {
		t.Fatalf("boundaries %v, want [200]", got)
	}
}

// TestShardGuards covers every sharded-mode precondition panic.
func TestShardGuards(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("Shard(0)", func() { New().Shard(0, 10) })
	expectPanic("Shard lookahead 0", func() { New().Shard(2, 0) })
	expectPanic("Shard twice", func() { s := New(); s.Shard(2, 10); s.Shard(2, 10) })
	expectPanic("Shard with pending events", func() { s := New(); s.At(1, func() {}); s.Shard(2, 10) })
	expectPanic("Shard after time advanced", func() {
		s := New()
		s.At(1, func() {})
		s.Run()
		s.Shard(2, 10)
	})
	expectPanic("Run on sharded", func() { s := New(); s.Shard(2, 10); s.Run() })
	expectPanic("RunUntil on sharded", func() { s := New(); s.Shard(2, 10); s.RunUntil(5) })
	expectPanic("Step on sharded", func() { s := New(); s.Shard(2, 10); s.Step() })
	expectPanic("AtShard out of range", func() { s := New(); s.Shard(2, 10); s.AtShard(2, 0, func() {}) })
	expectPanic("AtShard negative", func() { s := New(); s.Shard(2, 10); s.AtShard(-1, 0, func() {}) })
	expectPanic("AtShard into the past", func() {
		s := New()
		s.Shard(2, 10)
		s.AtShard(0, 5, func() { s.AtShard(1, 2, func() {}) })
		s.RunBudget(10)
	})
	expectPanic("SetShardRunner unsharded", func() { New().SetShardRunner(par.NewPool(1)) })
}

// TestAtShardUnsharded: on a sequential simulator AtShard is exactly At,
// so machine code can route unconditionally.
func TestAtShardUnsharded(t *testing.T) {
	s := New()
	ran := false
	s.AtShard(3, 7, func() { ran = true }) // shard index ignored
	if got := s.Run(); got != 7 || !ran {
		t.Fatalf("Run = %v (ran=%v), want 7 with event executed", got, ran)
	}
}

// TestShardedReserve: capacity hints split across shard queues without
// losing queued items.
func TestShardedReserve(t *testing.T) {
	s := New()
	s.Shard(4, 10)
	s.Reserve(1000)
	n := 0
	for i := 0; i < 40; i++ {
		s.AtShard(i%4, units.Time(i), func() { n++ })
	}
	s.Reserve(2000) // grow again with events pending in mailboxes
	if s.Pending() != 40 {
		t.Fatalf("Pending = %d, want 40", s.Pending())
	}
	if _, err := s.RunBudget(100); err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("executed %d events, want 40", n)
	}
}

// TestShardedRunnerPanicSurfaces: a panic inside an event body must reach
// the RunBudget caller even with a parallel runner installed (the panic
// fires on the coordinator, not a worker — but the pool must not swallow
// window-task failures either).
func TestShardedRunnerPanicSurfaces(t *testing.T) {
	s := New()
	s.Shard(2, 10)
	pool := par.NewPool(2)
	defer pool.Close()
	s.SetShardRunner(pool)
	s.AtShard(1, 5, func() { panic("event-boom") })
	defer func() {
		if r := recover(); r != "event-boom" {
			t.Fatalf("recovered %v, want event-boom", r)
		}
	}()
	s.RunBudget(10)
}
