// Package fault is the deterministic, seed-driven fault-injection layer of
// the simulator. The paper's two-level memory is a co-design with emerging
// far-memory parts (NVM-class DIMMs) whose error rates and latency
// variability are first-order design inputs; this package lets the same
// recorded trace be replayed under a configurable fault environment so
// experiments can answer "how do the co-design claims degrade under memory
// faults?" instead of assuming a perfect memory system.
//
// Three fault classes are modeled:
//
//   - Far-memory transient bit errors with an ECC SECDED model: a
//     single-bit (correctable) error costs a fixed extra controller
//     latency; a double-bit (uncorrectable) error triggers controller
//     re-reads with bounded exponential backoff in simulated time, and a
//     read whose retry budget is exhausted surfaces as a machine-level
//     MemFault outcome.
//   - Near-memory channel degradation: a scratchpad channel drops to a
//     fraction of its bandwidth for a simulated interval (thermal
//     throttling, refresh storms in stacked DRAM).
//   - NoC packet corruption: a corrupted message is retransmitted,
//     re-occupying its link and paying the hop latency again.
//
// Every decision is a pure function of (seed, device, index[, attempt]) via
// xrand.Mix — a stateless counter-based draw, not a shared sequential
// stream — so a given (trace, config, fault seed) is bit-identical across
// runs regardless of the order in which devices consult the injector, and
// Seed == 0 disables injection entirely (provably a no-op: every query
// returns the clean outcome and adds zero latency).
package fault

import (
	"fmt"

	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/xrand"
)

// Device keys partition the Mix keyspace so equal indices on different
// devices draw independent values.
const (
	DevFar  uint64 = 1 // far-memory ECC decisions, keyed by read index
	DevNear uint64 = 2 // near-memory degradation, keyed by (channel, epoch)
	DevNoC  uint64 = 3 // NoC corruption, keyed by message index
)

// Config describes one fault environment. The zero value (and any config
// with Seed == 0) disables injection.
type Config struct {
	Seed uint64 // fault stream seed; 0 disables all injection

	// Far-memory transient bit errors (ECC SECDED model).
	BitErrorRate      float64    // probability a far read observes a transient error
	UncorrectableFrac float64    // fraction of errors SECDED cannot correct (double-bit)
	StuckFrac         float64    // fraction of uncorrectable errors that persist across every retry
	CorrectLatency    units.Time // extra controller latency per corrected error
	RetryBackoff      units.Time // base backoff before the first controller re-read
	MaxRetries        int        // controller re-reads before declaring a MemFault

	// Near-memory channel degradation.
	DegradeProb   float64    // probability a (channel, epoch) window is degraded
	DegradeEpoch  units.Time // window length the degradation schedule is drawn over
	DegradeFactor int64      // service-time multiplier while degraded (bandwidth / factor)

	// NoC packet corruption.
	CorruptRate float64 // probability a message arrives corrupted and is retransmitted
	MaxResends  int     // retransmissions before the message is forced through
}

// Profile returns a full fault environment scaled from one knob: rate is
// the per-read far-memory bit error rate, with the other classes derived at
// fixed ratios so a single sweep axis exercises all three. The constants
// are defaults, not dogma; sweeps that need independent axes set Config
// fields directly.
func Profile(seed uint64, rate float64) Config {
	degrade := rate * 100
	if degrade > 1 {
		degrade = 1
	}
	return Config{
		Seed:              seed,
		BitErrorRate:      rate,
		UncorrectableFrac: 0.25,
		StuckFrac:         0.05,
		CorrectLatency:    20 * units.Nanosecond,
		RetryBackoff:      100 * units.Nanosecond,
		MaxRetries:        4,
		DegradeProb:       degrade,
		DegradeEpoch:      10 * units.Microsecond,
		DegradeFactor:     4,
		CorruptRate:       rate / 4,
		MaxResends:        4,
	}
}

// Validate checks that every rate is a probability and every latency,
// factor, and bound is non-negative (the command-line flag validators lean
// on this).
func (c Config) Validate() error {
	prob := func(name string, v float64) error {
		if v < 0 || v > 1 || v != v {
			return fmt.Errorf("fault: %s %v outside [0, 1]", name, v)
		}
		return nil
	}
	if err := prob("bit error rate", c.BitErrorRate); err != nil {
		return err
	}
	if err := prob("uncorrectable fraction", c.UncorrectableFrac); err != nil {
		return err
	}
	if err := prob("stuck fraction", c.StuckFrac); err != nil {
		return err
	}
	if err := prob("degrade probability", c.DegradeProb); err != nil {
		return err
	}
	if err := prob("corrupt rate", c.CorruptRate); err != nil {
		return err
	}
	switch {
	case c.CorrectLatency < 0:
		return fmt.Errorf("fault: negative correct latency %v", c.CorrectLatency)
	case c.RetryBackoff < 0:
		return fmt.Errorf("fault: negative retry backoff %v", c.RetryBackoff)
	case c.MaxRetries < 0:
		return fmt.Errorf("fault: negative retry budget %d", c.MaxRetries)
	case c.MaxResends < 0:
		return fmt.Errorf("fault: negative resend budget %d", c.MaxResends)
	case c.DegradeProb > 0 && c.DegradeEpoch <= 0:
		return fmt.Errorf("fault: degradation enabled with non-positive epoch %v", c.DegradeEpoch)
	case c.DegradeProb > 0 && c.DegradeFactor < 1:
		return fmt.Errorf("fault: degradation enabled with factor %d < 1", c.DegradeFactor)
	}
	return nil
}

// Enabled reports whether this config injects anything at all.
func (c Config) Enabled() bool {
	return c.Seed != 0 &&
		(c.BitErrorRate > 0 || c.DegradeProb > 0 || c.CorruptRate > 0)
}

// MemFault records one far-memory read whose retry budget was exhausted:
// the machine-level outcome of an uncorrectable, persistent error.
type MemFault struct {
	Addr    uint64     // faulting line address
	At      units.Time // simulated time the last retry completed
	Retries int        // controller re-reads spent before giving up
}

// Stats counts injected faults and their handling. All counters are
// simulated outcomes, deterministic for a given (trace, config, seed).
type Stats struct {
	FarBitErrors     uint64 // transient errors observed on far reads
	FarCorrected     uint64 // SECDED single-bit corrections
	FarUncorrectable uint64 // double-bit detections (retry sequences started)
	FarRetries       uint64 // controller re-reads issued
	MemFaults        uint64 // reads that exhausted the retry budget
	NearDegraded     uint64 // near accesses served by a degraded channel
	NoCRetransmits   uint64 // NoC messages retransmitted

	// Faults holds the first few machine-level faults for diagnosis.
	Faults []MemFault
}

// maxRecordedFaults caps the Faults sample so a pathological sweep point
// cannot balloon the result.
const maxRecordedFaults = 8

// Injector answers fault queries for one machine instance. Its state is
// simulator-owned (it hangs off the component graph and is only touched
// from the single-threaded event loop); all methods are safe on a nil
// receiver and return the clean outcome, so devices built without a fault
// layer need no branching.
type Injector struct {
	cfg     Config
	enabled bool
	stats   Stats
}

// New builds an injector for cfg. It panics on an invalid config (the
// machine validates earlier; this is the last line of defense). A Seed of
// zero, or all-zero rates, yields a disabled injector.
func New(cfg Config) *Injector {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Injector{cfg: cfg, enabled: cfg.Enabled()}
}

// RegisterProbes registers the injector's fault counters on the "fault"
// track. A nil or disabled injector registers nothing: a fault-free replay
// has no fault tracks rather than five all-zero ones.
func (in *Injector) RegisterProbes(tel *telemetry.Recorder) {
	if in == nil || !in.enabled {
		return
	}
	tel.Counter("fault", "corrected", func() uint64 { return in.stats.FarCorrected })
	tel.Counter("fault", "retries", func() uint64 { return in.stats.FarRetries })
	tel.Counter("fault", "mem_faults", func() uint64 { return in.stats.MemFaults })
	tel.Counter("fault", "near_degraded", func() uint64 { return in.stats.NearDegraded })
	tel.Counter("fault", "noc_retransmits", func() uint64 { return in.stats.NoCRetransmits })
}

// FarPlan is the ECC outcome for one far-memory read. The device applies
// it: Corrected adds CorrectLatency; each retry waits Backoff(k) and
// re-occupies the channel bus; Fatal marks the data as returned
// uncorrected — a machine-level MemFault.
type FarPlan struct {
	Corrected bool
	Retries   int
	Fatal     bool
}

// FarRead classifies far-memory read #index. Clean reads return the zero
// plan. Called once per far device read, so it must stay allocation-free.
//
//nmlint:hotpath
func (in *Injector) FarRead(index uint64) FarPlan {
	if in == nil || !in.enabled || in.cfg.BitErrorRate <= 0 {
		return FarPlan{}
	}
	if xrand.MixFloat64(in.cfg.Seed, DevFar, index, 0) >= in.cfg.BitErrorRate {
		return FarPlan{}
	}
	in.stats.FarBitErrors++
	if xrand.MixFloat64(in.cfg.Seed, DevFar, index, 1) >= in.cfg.UncorrectableFrac {
		in.stats.FarCorrected++
		return FarPlan{Corrected: true}
	}
	in.stats.FarUncorrectable++
	plan := FarPlan{}
	if xrand.MixFloat64(in.cfg.Seed, DevFar, index, 2) < in.cfg.StuckFrac {
		// A persistent (stuck-cell) fault: every re-read sees it again.
		plan.Retries, plan.Fatal = in.cfg.MaxRetries, true
	} else {
		// Transient: each re-read re-samples the error process.
		plan.Fatal = true
		for a := 1; a <= in.cfg.MaxRetries; a++ {
			plan.Retries = a
			if xrand.MixFloat64(in.cfg.Seed, DevFar, index, 2+uint64(a)) >= in.cfg.BitErrorRate {
				plan.Fatal = false
				break
			}
		}
	}
	in.stats.FarRetries += uint64(plan.Retries)
	return plan
}

// CorrectLatency returns the extra latency of one SECDED correction.
func (in *Injector) CorrectLatency() units.Time {
	if in == nil {
		return 0
	}
	return in.cfg.CorrectLatency
}

// Backoff returns the wait before controller re-read k (0-based): bounded
// exponential backoff in simulated time, base RetryBackoff, capped at 16
// doublings so the shift cannot overflow.
func (in *Injector) Backoff(k int) units.Time {
	if in == nil {
		return 0
	}
	if k > 16 {
		k = 16
	}
	return in.cfg.RetryBackoff << uint(k)
}

// NoteMemFault records a read that exhausted its retry budget. On the
// per-access fault path (a device calls it from inside the event loop).
//
//nmlint:hotpath
func (in *Injector) NoteMemFault(a uint64, at units.Time, retries int) {
	if in == nil {
		return
	}
	in.stats.MemFaults++
	if len(in.stats.Faults) < maxRecordedFaults {
		//nmlint:ignore hotpath bounded by maxRecordedFaults: at most eight appends per replay
		in.stats.Faults = append(in.stats.Faults, MemFault{Addr: a, At: at, Retries: retries})
	}
}

// NearFactor returns the service-time multiplier for an access to near
// channel ch starting at time at: 1 when the channel is healthy,
// DegradeFactor while the (channel, epoch) window it falls in is degraded.
// The degradation schedule is a pure function of (seed, channel, epoch), so
// it is fixed up front for all simulated time.
//
//nmlint:hotpath
func (in *Injector) NearFactor(ch int, at units.Time) int64 {
	if in == nil || !in.enabled || in.cfg.DegradeProb <= 0 {
		return 1
	}
	epoch := uint64(at / in.cfg.DegradeEpoch)
	if xrand.MixFloat64(in.cfg.Seed, DevNear, uint64(ch), epoch) >= in.cfg.DegradeProb {
		return 1
	}
	in.stats.NearDegraded++
	return in.cfg.DegradeFactor
}

// NoCResends returns how many times message #index must be retransmitted:
// each attempt re-samples the corruption process, bounded by MaxResends
// (after which the message is forced through — the simulator's stand-in
// for an end-to-end recovery path).
//
//nmlint:hotpath
func (in *Injector) NoCResends(index uint64) int {
	if in == nil || !in.enabled || in.cfg.CorruptRate <= 0 {
		return 0
	}
	n := 0
	for n < in.cfg.MaxResends &&
		xrand.MixFloat64(in.cfg.Seed, DevNoC, index, uint64(n)) < in.cfg.CorruptRate {
		n++
	}
	in.stats.NoCRetransmits += uint64(n)
	return n
}

// Stats returns a copy of the injection counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	s := in.stats
	s.Faults = append([]MemFault(nil), in.stats.Faults...)
	return s
}

// MemFaultError is the machine-level outcome of uncorrectable far-memory
// faults: the replay ran to completion, but one or more reads returned
// uncorrected data, so the simulated program's output cannot be trusted.
// Callers that sweep fault rates treat it as data (errors.As), not failure.
type MemFaultError struct {
	Count uint64
	First MemFault
}

// Error implements error.
func (e *MemFaultError) Error() string {
	return fmt.Sprintf("fault: %d uncorrectable memory fault(s); first at line %#x, t=%v after %d retries",
		e.Count, e.First.Addr, e.First.At, e.First.Retries)
}
