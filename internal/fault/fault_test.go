package fault

import (
	"testing"

	"repro/internal/units"
)

func TestProfileValid(t *testing.T) {
	for _, rate := range []float64{0, 1e-6, 1e-3, 0.5, 1} {
		cfg := Profile(7, rate)
		if err := cfg.Validate(); err != nil {
			t.Errorf("Profile(7, %v) invalid: %v", rate, err)
		}
	}
	if !Profile(7, 1e-4).Enabled() {
		t.Error("Profile with a positive rate must be enabled")
	}
	if Profile(0, 1e-4).Enabled() {
		t.Error("seed 0 must disable injection")
	}
	if Profile(7, 0).Enabled() {
		t.Error("rate 0 must disable injection")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"rate above one", func(c *Config) { c.BitErrorRate = 1.5 }},
		{"negative rate", func(c *Config) { c.BitErrorRate = -0.1 }},
		{"NaN rate", func(c *Config) { c.BitErrorRate = nan() }},
		{"bad uncorrectable frac", func(c *Config) { c.UncorrectableFrac = 2 }},
		{"bad stuck frac", func(c *Config) { c.StuckFrac = -1 }},
		{"bad degrade prob", func(c *Config) { c.DegradeProb = 7 }},
		{"bad corrupt rate", func(c *Config) { c.CorruptRate = -2 }},
		{"negative correct latency", func(c *Config) { c.CorrectLatency = -1 }},
		{"negative backoff", func(c *Config) { c.RetryBackoff = -1 }},
		{"negative retries", func(c *Config) { c.MaxRetries = -1 }},
		{"negative resends", func(c *Config) { c.MaxResends = -1 }},
		{"degrade without epoch", func(c *Config) { c.DegradeProb = 0.5; c.DegradeEpoch = 0 }},
		{"degrade factor zero", func(c *Config) { c.DegradeProb = 0.5; c.DegradeFactor = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Profile(3, 1e-3)
			tc.mut(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", cfg)
			}
		})
	}
}

func nan() float64 {
	z := 0.0
	return z / z
}

// TestNilInjectorClean pins the nil-safety contract: every method on a nil
// injector returns the clean outcome with zero latency.
func TestNilInjectorClean(t *testing.T) {
	var in *Injector
	if p := in.FarRead(0); p != (FarPlan{}) {
		t.Errorf("nil FarRead = %+v", p)
	}
	if in.CorrectLatency() != 0 || in.Backoff(3) != 0 {
		t.Error("nil injector must add zero latency")
	}
	if in.NearFactor(0, 0) != 1 {
		t.Error("nil NearFactor must be 1")
	}
	if in.NoCResends(0) != 0 {
		t.Error("nil NoCResends must be 0")
	}
	in.NoteMemFault(0, 0, 0) // must not panic
	if s := in.Stats(); s.FarBitErrors != 0 || s.MemFaults != 0 {
		t.Errorf("nil Stats = %+v", s)
	}
}

// TestSeedZeroNoOp pins the regression anchor: Seed == 0 yields the clean
// outcome for every query even with every rate maxed.
func TestSeedZeroNoOp(t *testing.T) {
	cfg := Profile(0, 1)
	in := New(cfg)
	for i := uint64(0); i < 1000; i++ {
		if p := in.FarRead(i); p != (FarPlan{}) {
			t.Fatalf("seed 0 FarRead(%d) = %+v", i, p)
		}
		if f := in.NearFactor(int(i%16), units.Time(i)*units.Microsecond); f != 1 {
			t.Fatalf("seed 0 NearFactor = %d", f)
		}
		if n := in.NoCResends(i); n != 0 {
			t.Fatalf("seed 0 NoCResends = %d", n)
		}
	}
	if s := in.Stats(); s.FarBitErrors != 0 || s.NearDegraded != 0 ||
		s.NoCRetransmits != 0 || s.MemFaults != 0 || len(s.Faults) != 0 {
		t.Fatalf("seed 0 accumulated stats: %+v", s)
	}
}

// TestFarReadDeterministic pins the counter-keyed draw: the same (seed,
// index) always yields the same plan, regardless of query order or
// repetition, and different seeds decorrelate.
func TestFarReadDeterministic(t *testing.T) {
	const n = 4096
	a := New(Profile(42, 0.05))
	b := New(Profile(42, 0.05))
	var plansFwd [n]FarPlan
	for i := uint64(0); i < n; i++ {
		plansFwd[i] = a.FarRead(i)
	}
	// Reverse order, interleaved with repeats, on a fresh injector.
	for i := int64(n - 1); i >= 0; i-- {
		p := b.FarRead(uint64(i))
		if p != plansFwd[i] {
			t.Fatalf("FarRead(%d) order-dependent: %+v vs %+v", i, p, plansFwd[i])
		}
	}
	diff := 0
	c := New(Profile(43, 0.05))
	for i := uint64(0); i < n; i++ {
		if c.FarRead(i) != plansFwd[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 42 and 43 produced identical fault schedules")
	}
}

// TestFarReadRateAndBounds checks the empirical error rate tracks the
// configured rate and every plan respects the retry bound.
func TestFarReadRateAndBounds(t *testing.T) {
	const n = 200000
	rate := 0.01
	in := New(Profile(9, rate))
	errors := 0
	for i := uint64(0); i < n; i++ {
		p := in.FarRead(i)
		if p.Corrected || p.Retries > 0 {
			errors++
		}
		if p.Retries < 0 || p.Retries > in.cfg.MaxRetries {
			t.Fatalf("FarRead(%d) retries %d outside [0, %d]", i, p.Retries, in.cfg.MaxRetries)
		}
		if p.Fatal && p.Retries != in.cfg.MaxRetries {
			t.Fatalf("FarRead(%d) fatal with %d retries, want the full budget", i, p.Retries)
		}
	}
	got := float64(errors) / n
	if got < rate/2 || got > rate*2 {
		t.Fatalf("empirical error rate %v, configured %v", got, rate)
	}
	s := in.Stats()
	if s.FarBitErrors != uint64(errors) {
		t.Fatalf("stats count %d errors, observed %d", s.FarBitErrors, errors)
	}
	if s.FarCorrected+s.FarUncorrectable != s.FarBitErrors {
		t.Fatalf("corrected %d + uncorrectable %d != errors %d",
			s.FarCorrected, s.FarUncorrectable, s.FarBitErrors)
	}
}

// TestBackoffExponentialCapped pins the backoff schedule.
func TestBackoffExponentialCapped(t *testing.T) {
	in := New(Config{Seed: 1, BitErrorRate: 0.1, RetryBackoff: 100 * units.Nanosecond, MaxRetries: 1})
	for k := 0; k < 5; k++ {
		want := (100 * units.Nanosecond) << uint(k)
		if got := in.Backoff(k); got != want {
			t.Fatalf("Backoff(%d) = %v, want %v", k, got, want)
		}
	}
	if in.Backoff(50) != in.Backoff(16) {
		t.Fatal("backoff must cap at 16 doublings")
	}
	if in.Backoff(50) <= 0 {
		t.Fatal("capped backoff overflowed")
	}
}

// TestNearFactorEpochWindows pins degradation to (channel, epoch) windows:
// constant within a window, independent across channels and epochs.
func TestNearFactorEpochWindows(t *testing.T) {
	cfg := Profile(5, 1e-3)
	cfg.DegradeProb = 0.5
	in := New(cfg)
	ep := cfg.DegradeEpoch
	for ch := 0; ch < 4; ch++ {
		for e := units.Time(0); e < 32; e++ {
			at := e * ep
			f := in.NearFactor(ch, at)
			if f != 1 && f != cfg.DegradeFactor {
				t.Fatalf("NearFactor = %d, want 1 or %d", f, cfg.DegradeFactor)
			}
			// Same window, different offsets: identical factor.
			for _, off := range []units.Time{1, ep / 2, ep - 1} {
				if g := in.NearFactor(ch, at+off); g != f {
					t.Fatalf("NearFactor(ch=%d) varies within epoch %d: %d vs %d", ch, e, g, f)
				}
			}
		}
	}
	// With probability 0.5 over 4x32 windows, both outcomes must occur.
	s := in.Stats()
	if s.NearDegraded == 0 {
		t.Fatal("no window degraded at probability 0.5")
	}
}

// TestNoCResendsBounded pins the retransmission bound.
func TestNoCResendsBounded(t *testing.T) {
	cfg := Profile(11, 1e-3)
	cfg.CorruptRate = 0.9 // nearly every attempt corrupts
	in := New(cfg)
	saw := 0
	for i := uint64(0); i < 1000; i++ {
		n := in.NoCResends(i)
		if n < 0 || n > cfg.MaxResends {
			t.Fatalf("NoCResends(%d) = %d outside [0, %d]", i, n, cfg.MaxResends)
		}
		if n > 0 {
			saw++
		}
	}
	if saw == 0 {
		t.Fatal("no retransmissions at corrupt rate 0.9")
	}
}

// TestNewPanicsOnInvalid pins the last line of defense.
func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New must panic on an invalid config")
		}
	}()
	New(Config{Seed: 1, BitErrorRate: 2})
}

// TestStatsCopy confirms Stats() snapshots: mutating the returned fault
// sample must not alias the injector's.
func TestStatsCopy(t *testing.T) {
	in := New(Profile(1, 1e-3))
	in.NoteMemFault(0xabc, 5, 3)
	s := in.Stats()
	if len(s.Faults) != 1 || s.Faults[0].Addr != 0xabc {
		t.Fatalf("stats = %+v", s)
	}
	s.Faults[0].Addr = 0
	if in.Stats().Faults[0].Addr != 0xabc {
		t.Fatal("Stats returned an aliased fault sample")
	}
}

// TestMemFaultRecordingCapped confirms the diagnostic sample stays small.
func TestMemFaultRecordingCapped(t *testing.T) {
	in := New(Profile(1, 1e-3))
	for i := 0; i < 100; i++ {
		in.NoteMemFault(uint64(i), units.Time(i), 4)
	}
	s := in.Stats()
	if s.MemFaults != 100 {
		t.Fatalf("MemFaults = %d, want 100", s.MemFaults)
	}
	if len(s.Faults) != maxRecordedFaults {
		t.Fatalf("recorded %d faults, want cap %d", len(s.Faults), maxRecordedFaults)
	}
}
