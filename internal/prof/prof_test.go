package prof

import (
	"os"
	"path/filepath"
	"testing"
)

// TestDisabled confirms two empty paths yield an inert Profiles whose Stop
// does nothing.
func TestDisabled(t *testing.T) {
	p, err := Start("", "")
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
}

// TestWritesProfiles runs a full Start/Stop cycle and checks both files
// land non-empty. The heap profile is written entirely at Stop; the CPU
// profile at least carries the pprof header.
func TestWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	p, err := Start(cpu, mem)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	// A little allocation so the heap profile has something to say.
	sink := make([][]byte, 64)
	for i := range sink {
		sink[i] = make([]byte, 1<<12)
	}
	_ = sink
	if err := p.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("missing profile %s: %v", path, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
	// Stop is single-shot but harmless to repeat.
	if err := p.Stop(); err != nil {
		t.Errorf("second Stop: %v", err)
	}
}

// TestStartBadPath confirms an uncreatable CPU path fails up front rather
// than at Stop.
func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("Start with uncreatable path = nil, want error")
	}
}
