// Package prof wires the runtime's CPU and heap profilers to command-line
// flags: the -cpuprofile/-memprofile convention of the go tool, shared by
// nmsim and sweep so perf work can attach real profiles to a claim instead
// of guessing. Profiling is strictly host-side observation — it never
// touches simulated state, so enabling it cannot change a single output
// byte.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Profiles manages one command's optional profile outputs. The zero value
// (from Start with two empty paths) is inert: Stop is a no-op.
type Profiles struct {
	cpuFile *os.File
	memPath string
}

// Start begins CPU profiling into cpuPath (when non-empty) and remembers
// memPath for the heap snapshot Stop writes. Either path may be empty to
// disable that profile.
func Start(cpuPath, memPath string) (*Profiles, error) {
	p := &Profiles{memPath: memPath}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
		p.cpuFile = f
	}
	return p, nil
}

// Stop ends the CPU profile and writes the heap profile, reporting the
// first error it hits (a full disk surfaces at close). Safe to call once
// whether or not profiling was enabled; the caller should run it even when
// the command failed, so partial runs still yield usable profiles.
func (p *Profiles) Stop() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = fmt.Errorf("prof: %w", err)
		}
	}
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		keep(p.cpuFile.Close())
		p.cpuFile = nil
	}
	if p.memPath != "" {
		f, err := os.Create(p.memPath)
		if err != nil {
			keep(err)
			return first
		}
		runtime.GC() // materialize up-to-date allocation statistics
		keep(pprof.WriteHeapProfile(f))
		keep(f.Close())
		p.memPath = ""
	}
	return first
}
