// Package xrand provides a small, fast, deterministic random number
// generator (PCG-XSL-RR 128/64) plus the sampling utilities the sorting
// algorithms need: uniform keys, sampling with and without replacement, and
// Fisher-Yates shuffles.
//
// The simulator must be bit-reproducible across runs, so nothing in this
// repository uses math/rand's global source; every randomized component
// takes an explicit *xrand.RNG seeded by the caller.
package xrand

import "math/bits"

// RNG is a PCG-XSL-RR 128/64 generator. The zero value is not usable; use
// New.
type RNG struct {
	hi, lo uint64 // 128-bit state
}

// Multiplier for the 128-bit LCG step (PCG reference constant).
const (
	mulHi = 2549297995355413924
	mulLo = 4865540595714422341
	incHi = 6364136223846793005
	incLo = 1442695040888963407
)

// New returns a generator seeded from a single 64-bit seed. Distinct seeds
// yield independent-looking streams.
func New(seed uint64) *RNG {
	r := &RNG{hi: seed, lo: seed ^ 0x9e3779b97f4a7c15}
	// Warm the state so similar seeds diverge.
	for i := 0; i < 4; i++ {
		r.Uint64()
	}
	return r
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *RNG) Uint64() uint64 {
	// 128-bit multiply-add state update.
	hi, lo := bits.Mul64(r.lo, mulLo)
	hi += r.hi*mulLo + r.lo*mulHi
	var carry uint64
	lo, carry = bits.Add64(lo, incLo, 0)
	hi, _ = bits.Add64(hi, incHi, carry)
	r.hi, r.lo = hi, lo
	// XSL-RR output function.
	return bits.RotateLeft64(hi^lo, -int(hi>>58))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Uint64n returns a uniform value in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Mix returns a statistically independent 64-bit value for the given key
// tuple under seed — a stateless, counter-based draw (SplitMix64 finalizer
// folded over the keys). Components that must make randomized decisions
// without sharing a sequential stream (e.g. fault injection keyed by
// (seed, device, access index)) use Mix so the outcome is a pure function
// of the tuple, independent of the order in which decisions are consumed.
func Mix(seed uint64, keys ...uint64) uint64 {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, k := range keys {
		h += 0x9e3779b97f4a7c15 + k
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	// Final scramble so a zero-key tuple still diverges across seeds.
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// MixFloat64 maps Mix's draw for the tuple to a uniform value in [0, 1),
// with the same bit discipline as Float64.
func MixFloat64(seed uint64, keys ...uint64) float64 {
	return float64(Mix(seed, keys...)>>11) / (1 << 53)
}

// Keys fills dst with uniform 64-bit keys — the paper's workload of random
// 64-bit integers.
func (r *RNG) Keys(dst []uint64) {
	for i := range dst {
		dst[i] = r.Uint64()
	}
}

// Sample draws m indices uniformly from [0, n) with replacement, matching
// the sampling step of the scratchpad sorting algorithm (Section III-A of
// the paper, which notes sampling with replacement suffices).
func (r *RNG) Sample(n, m int) []int {
	out := make([]int, m)
	for i := range out {
		out[i] = r.Intn(n)
	}
	return out
}

// SampleNoReplace draws m distinct indices uniformly from [0, n) using
// Floyd's algorithm. It panics if m > n.
func (r *RNG) SampleNoReplace(n, m int) []int {
	if m > n {
		panic("xrand: SampleNoReplace with m > n")
	}
	seen := make(map[int]struct{}, m)
	out := make([]int, 0, m)
	for j := n - m; j < n; j++ {
		t := r.Intn(j + 1)
		if _, dup := seen[t]; dup {
			t = j
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}

// Shuffle performs a Fisher-Yates shuffle of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
