package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("streams diverged at %d: %x vs %x", i, x, y)
		}
	}
}

func TestSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("nearby seeds produced %d identical outputs of 100", same)
	}
}

func TestUint64nRange(t *testing.T) {
	r := New(7)
	for _, n := range []uint64{1, 2, 3, 10, 1 << 40} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nUniformity(t *testing.T) {
	// Chi-squared-ish sanity check over 16 buckets.
	r := New(99)
	const buckets, draws = 16, 160000
	var count [buckets]int
	for i := 0; i < draws; i++ {
		count[r.Uint64n(buckets)]++
	}
	want := float64(draws) / buckets
	for i, c := range count {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestSample(t *testing.T) {
	r := New(5)
	s := r.Sample(100, 30)
	if len(s) != 30 {
		t.Fatalf("len = %d", len(s))
	}
	for _, v := range s {
		if v < 0 || v >= 100 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestSampleNoReplace(t *testing.T) {
	r := New(5)
	for trial := 0; trial < 50; trial++ {
		s := r.SampleNoReplace(50, 20)
		if len(s) != 20 {
			t.Fatalf("len = %d", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 50 {
				t.Fatalf("out of range: %d", v)
			}
			if seen[v] {
				t.Fatalf("duplicate sample %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleNoReplaceFull(t *testing.T) {
	// m == n must return a permutation of [0,n).
	r := New(11)
	s := r.SampleNoReplace(10, 10)
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("not a permutation: %v", s)
	}
}

func TestSampleNoReplacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for m > n")
		}
	}()
	New(1).SampleNoReplace(3, 4)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(8)
	p := r.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("bad permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestKeysFills(t *testing.T) {
	r := New(13)
	ks := make([]uint64, 1000)
	r.Keys(ks)
	zero := 0
	for _, k := range ks {
		if k == 0 {
			zero++
		}
	}
	if zero > 1 {
		t.Errorf("%d zero keys in 1000 uniform draws", zero)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(21)
	for i := 0; i < 10000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
