package xrand

import "testing"

// TestMixDeterministic pins Mix as a pure function of its arguments.
func TestMixDeterministic(t *testing.T) {
	if Mix(1, 2, 3) != Mix(1, 2, 3) {
		t.Fatal("Mix is not deterministic")
	}
	if Mix(1, 2, 3) == Mix(1, 3, 2) {
		t.Fatal("Mix ignores key order")
	}
	if Mix(1, 2, 3) == Mix(2, 2, 3) {
		t.Fatal("Mix ignores the seed")
	}
}

// TestMixSpread checks a crude avalanche property: flipping one key bit
// flips roughly half the output bits on average.
func TestMixSpread(t *testing.T) {
	totalBits := 0
	const trials = 1000
	for i := uint64(0); i < trials; i++ {
		a := Mix(7, i)
		b := Mix(7, i^1)
		totalBits += popcount(a ^ b)
	}
	avg := float64(totalBits) / trials
	if avg < 24 || avg > 40 {
		t.Fatalf("average flipped bits %v, want near 32", avg)
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// TestMixFloat64Range confirms the unit-interval projection.
func TestMixFloat64Range(t *testing.T) {
	var lo, hi float64 = 1, 0
	for i := uint64(0); i < 100000; i++ {
		f := MixFloat64(99, i)
		if f < 0 || f >= 1 {
			t.Fatalf("MixFloat64 = %v outside [0, 1)", f)
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if lo > 0.01 || hi < 0.99 {
		t.Fatalf("MixFloat64 range [%v, %v] suspiciously narrow", lo, hi)
	}
}
