package units

import (
	"testing"
	"testing/quick"
)

func TestBytesString(t *testing.T) {
	cases := []struct {
		in   Bytes
		want string
	}{
		{0, "0B"},
		{512, "512B"},
		{KiB, "1KiB"},
		{16 * KiB, "16KiB"},
		{512 * KiB, "512KiB"},
		{MiB, "1MiB"},
		{3 * GiB, "3GiB"},
		{KiB + 1, "1025B"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Bytes(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := Second.Seconds(); got != 1.0 {
		t.Errorf("Second.Seconds() = %v, want 1", got)
	}
	if got := (50 * Nanosecond).Nanoseconds(); got != 50.0 {
		t.Errorf("50ns = %v ns", got)
	}
	if got := (1500 * Nanosecond).String(); got != "1.500us" {
		t.Errorf("String = %q", got)
	}
	if got := (250 * Picosecond).String(); got != "250ps" {
		t.Errorf("String = %q", got)
	}
}

func TestHzPeriod(t *testing.T) {
	cases := []struct {
		f    Hz
		want Time
	}{
		{GHz, 1000 * Picosecond},
		{2 * GHz, 500 * Picosecond},
		{500 * MHz, 2 * Nanosecond},
		{Hz(1.7e9), 588 * Picosecond}, // the paper's 1.7GHz cores
	}
	for _, c := range cases {
		if got := c.f.Period(); got != c.want {
			t.Errorf("%v.Period() = %v, want %v", c.f, got, c.want)
		}
	}
}

func TestHzPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero frequency")
		}
	}()
	Hz(0).Period()
}

func TestTransferTime(t *testing.T) {
	bw := GBps(1) // 1e9 bytes/s: 1 byte per nanosecond
	if got := bw.TransferTime(64); got != 64*Nanosecond {
		t.Errorf("64B at 1GB/s = %v, want 64ns", got)
	}
	if got := bw.TransferTime(0); got != 0 {
		t.Errorf("0B transfer = %v, want 0", got)
	}
	// 72 GB/s link from the paper: 64B should take ceil(64e12/72e9) = 889ps.
	if got := GBps(72).TransferTime(64); got != 889*Picosecond {
		t.Errorf("64B at 72GB/s = %v, want 889ps", got)
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	bw := GBps(36)
	f := func(a, b uint16) bool {
		x, y := Bytes(a), Bytes(b)
		if x > y {
			x, y = y, x
		}
		return bw.TransferTime(x) <= bw.TransferTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 64, 0},
		{1, 64, 1},
		{64, 64, 1},
		{65, 64, 2},
		{-5, 64, 0},
		{1000, 3, 334},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivProperty(t *testing.T) {
	f := func(a uint32, b uint16) bool {
		if b == 0 {
			return true
		}
		q := CeilDiv(int64(a), int64(b))
		return q*int64(b) >= int64(a) && (q-1)*int64(b) < int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBandwidthString(t *testing.T) {
	if got := GBps(72).String(); got != "72.00GB/s" {
		t.Errorf("String = %q", got)
	}
}

func TestTimeStringAllRanges(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{2 * Second, "2.000s"},
		{5 * Millisecond, "5.000ms"},
		{42 * Nanosecond, "42.000ns"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d ps -> %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestHzStringAllRanges(t *testing.T) {
	cases := []struct {
		f    Hz
		want string
	}{
		{Hz(1.7e9), "1.70GHz"},
		{533 * MHz, "533.0MHz"},
		{32 * KHz, "32.0kHz"},
		{Hz(500), "500Hz"},
	}
	for _, c := range cases {
		if got := c.f.String(); got != c.want {
			t.Errorf("%v -> %q, want %q", int64(c.f), got, c.want)
		}
	}
}

func TestTransferTimePanicsOnZeroBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BytesPerSecond(0).TransferTime(64)
}

func TestCeilDivPanicsOnZeroDivisor(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CeilDiv(5, 0)
}

func TestParseTime(t *testing.T) {
	cases := []struct {
		in   string
		want Time
	}{
		{"1ps", Picosecond},
		{"250ns", 250 * Nanosecond},
		{"10us", 10 * Microsecond},
		{"10µs", 10 * Microsecond},
		{"1.5ms", 1500 * Microsecond},
		{"2s", 2 * Second},
		{" 3 ns ", 3 * Nanosecond}, // whitespace around value and suffix
		{"0ps", 0},
		{"1.4ps", Picosecond},        // rounds to nearest picosecond
		{"0.0015ns", 2 * Picosecond}, // 1.5ps rounds up
	}
	for _, c := range cases {
		got, err := ParseTime(c.in)
		if err != nil {
			t.Errorf("ParseTime(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTime(%q) = %d, want %d", c.in, int64(got), int64(c.want))
		}
	}
}

func TestParseTimeRejects(t *testing.T) {
	for _, in := range []string{
		"",       // empty
		"10",     // bare number: the suffix is mandatory
		"-5ns",   // negative durations are meaningless in sim time
		"NaNs",   // NaN smuggled through the "s" suffix
		"1e300s", // overflows the picosecond representation
		"xyzms",  // garbage value
		"5 sec",  // unknown suffix
	} {
		if got, err := ParseTime(in); err == nil {
			t.Errorf("ParseTime(%q) = %d, want error", in, int64(got))
		}
	}
}
