// Package units provides the byte-size and simulated-time quantities used
// throughout the two-level memory simulator and the algorithmic model.
//
// Simulated time is an integer number of picoseconds so that components with
// different clocks (1.7 GHz cores, 500 MHz scratchpad, DDR-1066 far memory)
// can share one event queue without rounding drift.
package units

import (
	"fmt"
	"strconv"
	"strings"
)

// Bytes is a byte count. Sizes in the model (B, ρB, M, Z) and in the machine
// description (cache capacities, line sizes) are all expressed in Bytes.
type Bytes int64

// Common byte-size constants.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

// String renders a byte count with a binary-prefix unit, e.g. "512KiB".
func (b Bytes) String() string {
	switch {
	case b >= GiB && b%GiB == 0:
		return fmt.Sprintf("%dGiB", b/GiB)
	case b >= MiB && b%MiB == 0:
		return fmt.Sprintf("%dMiB", b/MiB)
	case b >= KiB && b%KiB == 0:
		return fmt.Sprintf("%dKiB", b/KiB)
	default:
		return fmt.Sprintf("%dB", int64(b))
	}
}

// Time is a simulated timestamp or duration in picoseconds.
type Time int64

// Common durations.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts a simulated duration to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds converts a simulated duration to floating-point nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String renders a duration with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanoseconds())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// ParseTime parses a duration flag value like "10us", "1.5ms", "250ns", or
// "40000ps" into a simulated Time. The unit suffix is mandatory — a bare
// number is ambiguous in a codebase where time is picoseconds — and the
// value must be non-negative and finite. "us" and "µs" both denote
// microseconds.
func ParseTime(s string) (Time, error) {
	str := strings.TrimSpace(s)
	var unit Time
	switch {
	case strings.HasSuffix(str, "ps"):
		unit, str = Picosecond, strings.TrimSuffix(str, "ps")
	case strings.HasSuffix(str, "ns"):
		unit, str = Nanosecond, strings.TrimSuffix(str, "ns")
	case strings.HasSuffix(str, "µs"):
		unit, str = Microsecond, strings.TrimSuffix(str, "µs")
	case strings.HasSuffix(str, "us"):
		unit, str = Microsecond, strings.TrimSuffix(str, "us")
	case strings.HasSuffix(str, "ms"):
		unit, str = Millisecond, strings.TrimSuffix(str, "ms")
	case strings.HasSuffix(str, "s"):
		unit, str = Second, strings.TrimSuffix(str, "s")
	default:
		return 0, fmt.Errorf("units: duration %q needs a unit suffix (ps, ns, us, ms, s)", s)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(str), 64)
	if err != nil {
		return 0, fmt.Errorf("units: bad duration %q: %v", s, err)
	}
	if v < 0 || v != v || v > float64(1<<62)/float64(unit) {
		return 0, fmt.Errorf("units: duration %q out of range", s)
	}
	return Time(v*float64(unit) + 0.5), nil
}

// Hz is a clock frequency in cycles per second.
type Hz int64

// Common frequencies.
const (
	KHz Hz = 1e3
	MHz Hz = 1e6
	GHz Hz = 1e9
)

// Period returns the duration of one clock cycle, rounded to the nearest
// picosecond. Period panics on a non-positive frequency.
func (f Hz) Period() Time {
	if f <= 0 {
		panic("units: non-positive frequency")
	}
	return Time((int64(Second) + int64(f)/2) / int64(f))
}

// String renders a frequency with an adaptive unit.
func (f Hz) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.2fGHz", float64(f)/float64(GHz))
	case f >= MHz:
		return fmt.Sprintf("%.1fMHz", float64(f)/float64(MHz))
	case f >= KHz:
		return fmt.Sprintf("%.1fkHz", float64(f)/float64(KHz))
	default:
		return fmt.Sprintf("%dHz", int64(f))
	}
}

// BytesPerSecond is a bandwidth. Link and channel capacities are expressed
// in BytesPerSecond.
type BytesPerSecond int64

// GBps constructs a bandwidth from a gigabytes-per-second figure as used in
// the paper's Figure 4 (e.g. "72GB/s connection"). Decimal gigabytes.
func GBps(gb float64) BytesPerSecond { return BytesPerSecond(gb * 1e9) }

// TransferTime returns how long moving n bytes occupies a resource of this
// bandwidth, rounded up to a whole picosecond. Zero bytes take zero time.
func (bw BytesPerSecond) TransferTime(n Bytes) Time {
	if bw <= 0 {
		panic("units: non-positive bandwidth")
	}
	if n <= 0 {
		return 0
	}
	num := int64(n) * int64(Second)
	return Time((num + int64(bw) - 1) / int64(bw))
}

// String renders a bandwidth in GB/s (decimal).
func (bw BytesPerSecond) String() string {
	return fmt.Sprintf("%.2fGB/s", float64(bw)/1e9)
}

// CeilDiv returns ceil(a/b) for positive b. It is used pervasively when
// converting byte counts to whole blocks or lines.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("units: CeilDiv with non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}
