package telemetry

import (
	"bufio"
	"io"
	"strconv"
)

// WriteCSV dumps the sampled time series: one row per sample epoch, one
// column per probe (cumulative counter values), headed by the simulated
// timestamp in picoseconds. Track and counter names never contain commas or
// quotes (they are generated identifiers like "far.ch0" / "bytes"), so the
// encoding is plain and byte-deterministic.
func (r *Recorder) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString("t_ps")
	for i := range r.probes {
		bw.WriteByte(',')
		bw.WriteString(r.probes[i].track)
		bw.WriteByte('.')
		bw.WriteString(r.probes[i].name)
	}
	bw.WriteByte('\n')
	for s := 0; s < len(r.times); s++ {
		bw.WriteString(strconv.FormatInt(int64(r.times[s]), 10))
		for _, v := range r.row(s) {
			bw.WriteByte(',')
			bw.WriteString(strconv.FormatUint(v, 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}
