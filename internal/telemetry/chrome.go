package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/units"
)

// Chrome trace-event export: the JSON object format understood by Perfetto
// (ui.perfetto.dev) and chrome://tracing. The writer is hand-rolled rather
// than reflection-based so the byte stream is a pure function of the
// recorded data: fixed key order, fixed number formatting, no map
// iteration. Determinism here is load-bearing — the golden-digest test
// compares exports byte for byte across runs and GOMAXPROCS settings.
//
// Layout: one process (pid 1) named for the machine; each slice/instant
// track (phases, per-core barrier waits, dma, faults) is a named thread;
// each registered probe becomes a counter track ("C" events) showing the
// per-epoch delta — i.e. traffic per epoch, the time-resolved view of the
// end-of-run aggregates in machine.Result.

const chromePid = 1

// ExportChrome writes the full timeline as Chrome trace-event JSON.
func (r *Recorder) ExportChrome(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	bw.WriteString(`{"displayTimeUnit":"ns","traceEvents":[`)
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteByte(',')
		}
		first = false
		bw.WriteByte('\n')
		bw.WriteString(s)
	}

	// Process and thread metadata. Thread ids are assigned by first
	// appearance: the phase track, then span and instant tracks.
	emit(fmt.Sprintf(`{"ph":"M","pid":%d,"name":"process_name","args":{"name":"nmsim machine"}}`, chromePid))
	tracks := r.sliceTracks()
	tid := map[string]int{}
	for i, name := range tracks {
		tid[name] = i + 1
		emit(fmt.Sprintf(`{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%s}}`,
			chromePid, i+1, jsonString(name)))
	}

	// Phase slices: each phase runs until the next mark or the replay end.
	for i, ph := range r.phases {
		end := r.end
		if i+1 < len(r.phases) {
			end = r.phases[i+1].at
		}
		emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s}`,
			chromePid, tid[PhaseTrack], chromeTs(ph.at), chromeTs(end-ph.at), jsonString(ph.name)))
	}

	// Spans and instants, in recorded (event-loop) order.
	for i := range r.spans {
		s := r.spans[i]
		emit(fmt.Sprintf(`{"ph":"X","pid":%d,"tid":%d,"ts":%s,"dur":%s,"name":%s}`,
			chromePid, tid[s.track], chromeTs(s.start), chromeTs(s.end-s.start), jsonString(s.name)))
	}
	for i := range r.instants {
		in := r.instants[i]
		emit(fmt.Sprintf(`{"ph":"i","pid":%d,"tid":%d,"ts":%s,"s":"t","name":%s}`,
			chromePid, tid[in.track], chromeTs(in.at), jsonString(in.name)))
	}

	// Counter tracks: one per probe, valued with the per-epoch delta so the
	// track reads as traffic per epoch rather than a monotone ramp.
	for s := 0; s < len(r.times); s++ {
		row := r.row(s)
		var prev []uint64
		if s > 0 {
			prev = r.row(s - 1)
		}
		for p := range r.probes {
			v := row[p]
			if prev != nil {
				v -= prev[p]
			}
			emit(fmt.Sprintf(`{"ph":"C","pid":%d,"ts":%s,"name":%s,"args":{"value":%d}}`,
				chromePid, chromeTs(r.times[s]), jsonString(r.probes[p].track+"."+r.probes[p].name), v))
		}
	}

	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// chromeTs renders a simulated time as trace-event microseconds with full
// picosecond precision, deterministically ("%d.%06d" — no float formatting).
func chromeTs(t units.Time) string {
	if t < 0 {
		t = 0
	}
	return fmt.Sprintf("%d.%06d", int64(t)/int64(units.Microsecond), int64(t)%int64(units.Microsecond))
}

// jsonString renders a track or event name as a JSON string literal.
func jsonString(s string) string {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		panic(err)
	}
	return string(b)
}

// ValidateChromeJSON checks that data parses as a Chrome trace-event JSON
// object with a non-empty traceEvents array whose entries carry the
// required "ph" and "name" fields. cmd/tracecheck and the CI smoke test use
// it to validate generated timelines without a browser.
func ValidateChromeJSON(data []byte) error {
	var doc struct {
		TraceEvents []map[string]json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("telemetry: not trace-event JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("telemetry: traceEvents array is missing or empty")
	}
	for i, ev := range doc.TraceEvents {
		var ph, name string
		if err := json.Unmarshal(ev["ph"], &ph); err != nil || ph == "" {
			return fmt.Errorf("telemetry: event %d has no phase type", i)
		}
		if err := json.Unmarshal(ev["name"], &name); err != nil || name == "" {
			return fmt.Errorf("telemetry: event %d has no name", i)
		}
	}
	return nil
}
