package telemetry

import (
	"strings"
	"testing"

	"repro/internal/units"
)

func TestSamplingRows(t *testing.T) {
	r := New(units.Microsecond)
	var a, b uint64
	r.Counter("dev", "a", func() uint64 { return a })
	r.Counter("dev", "b", func() uint64 { return b })
	if r.Probes() != 2 {
		t.Fatalf("probes = %d", r.Probes())
	}

	a, b = 1, 10
	r.Sample(0)
	a, b = 5, 20
	r.Sample(units.Microsecond)
	if r.Samples() != 2 {
		t.Fatalf("samples = %d", r.Samples())
	}
	if got := r.row(0); got[0] != 1 || got[1] != 10 {
		t.Errorf("row 0 = %v", got)
	}
	if got := r.row(1); got[0] != 5 || got[1] != 20 {
		t.Errorf("row 1 = %v", got)
	}
}

func TestFinishRecordsFinalSample(t *testing.T) {
	r := New(units.Microsecond)
	var v uint64
	r.Counter("dev", "v", func() uint64 { return v })
	r.Sample(0)
	v = 7
	end := 1500 * units.Nanosecond
	r.Finish(end)
	if r.Samples() != 2 {
		t.Fatalf("samples after Finish = %d", r.Samples())
	}
	if got := r.row(1); got[0] != 7 {
		t.Errorf("final row = %v", got)
	}
	if r.End() != end {
		t.Errorf("End() = %v, want %v", r.End(), end)
	}

	// A sample already sitting exactly at end must not be duplicated.
	r2 := New(units.Microsecond)
	r2.Counter("dev", "v", func() uint64 { return 1 })
	r2.Sample(units.Microsecond)
	r2.Finish(units.Microsecond)
	if r2.Samples() != 1 {
		t.Errorf("duplicate final sample: %d rows", r2.Samples())
	}
}

func TestRecorderPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("New(0)", func() { New(0) })
	mustPanic("New(-1)", func() { New(-units.Nanosecond) })
	mustPanic("double Attach", func() {
		r := New(units.Microsecond)
		r.Attach()
		r.Attach()
	})
	mustPanic("Counter after sampling", func() {
		r := New(units.Microsecond)
		r.Sample(0)
		r.Counter("dev", "late", func() uint64 { return 0 })
	})
	mustPanic("double Finish", func() {
		r := New(units.Microsecond)
		r.Finish(units.Microsecond)
		r.Finish(units.Microsecond)
	})
}

func TestSliceTrackOrder(t *testing.T) {
	r := New(units.Microsecond)
	r.Span("dma", "copy", 0, units.Microsecond)
	r.MarkPhase("p1", 0)
	r.Instant("faults", "mem_fault", units.Microsecond)
	r.Span("core0", "barrier-wait", 0, units.Nanosecond)
	r.Span("dma", "copy", units.Microsecond, 2*units.Microsecond)

	got := r.sliceTracks()
	want := []string{PhaseTrack, "dma", "core0", "faults"}
	if len(got) != len(want) {
		t.Fatalf("tracks = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tracks = %v, want %v", got, want)
		}
	}
}

func TestPhaseUsageMath(t *testing.T) {
	p := PhaseUsage{
		Name:  "p1",
		Start: 0, End: units.Microsecond,
		FarBytes: 1000, NearBytes: 4000,
		FarBusy: 2 * units.Microsecond, NearBusy: 4 * units.Microsecond,
		FarChannels: 4, NearChannels: 16,
	}
	if p.Duration() != units.Microsecond {
		t.Errorf("duration = %v", p.Duration())
	}
	// 1000 bytes in 1us = 1e9 B/s = 1 GB/s.
	if got := p.FarGBps(); got != 1.0 {
		t.Errorf("FarGBps = %v", got)
	}
	if got := p.NearGBps(); got != 4.0 {
		t.Errorf("NearGBps = %v", got)
	}
	// 2us busy over 1us x 4 channels = 0.5.
	if got := p.FarUtil(); got != 0.5 {
		t.Errorf("FarUtil = %v", got)
	}
	// 4us busy over 1us x 16 channels = 0.25.
	if got := p.NearUtil(); got != 0.25 {
		t.Errorf("NearUtil = %v", got)
	}

	// Degenerate phases report zero, not NaN or Inf.
	z := PhaseUsage{Name: "empty"}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"FarGBps", z.FarGBps()}, {"NearGBps", z.NearGBps()},
		{"FarUtil", z.FarUtil()}, {"NearUtil", z.NearUtil()},
	} {
		if c.v != 0 {
			t.Errorf("zero-duration %s = %v, want 0", c.name, c.v)
		}
	}
}

func TestCSVExport(t *testing.T) {
	r := New(units.Microsecond)
	var v uint64
	r.Counter("far", "reads", func() uint64 { return v })
	r.Counter("far.ch0", "bytes", func() uint64 { return 2 * v })
	r.Sample(0)
	v = 3
	r.Sample(units.Microsecond)

	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "t_ps,far.reads,far.ch0.bytes\n0,0,0\n1000000,3,6\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}
