package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/units"
)

// ndjsonRecorder builds a small sealed recorder with two counters.
func ndjsonRecorder() *Recorder {
	r := New(units.Microsecond)
	var a, b uint64
	r.Counter("far.ch0", "bytes", func() uint64 { return a })
	r.Counter("near.ch0", "bytes", func() uint64 { return b })
	a, b = 64, 128
	r.Sample(units.Microsecond)
	a, b = 4096, 256
	r.Finish(3 * units.Microsecond)
	return r
}

// TestWriteNDJSON checks the stream is valid JSON per line, keeps probe
// registration order in the keys, and is byte-deterministic.
func TestWriteNDJSON(t *testing.T) {
	r := ndjsonRecorder()
	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var obj struct {
			Type     string            `json:"type"`
			TPs      int64             `json:"t_ps"`
			Counters map[string]uint64 `json:"counters"`
		}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		if obj.Type != "sample" || len(obj.Counters) != 2 {
			t.Fatalf("line %d = %+v, want sample with 2 counters", i, obj)
		}
	}
	if !strings.Contains(lines[0], `"far.ch0.bytes":64`) || !strings.Contains(lines[1], `"near.ch0.bytes":256`) {
		t.Fatalf("counter values wrong:\n%s", buf.String())
	}
	// Registration order, not sorted order: far.ch0 registered first.
	if far := strings.Index(lines[0], "far.ch0"); far > strings.Index(lines[0], "near.ch0") {
		t.Fatalf("keys not in registration order: %s", lines[0])
	}
	var again bytes.Buffer
	if err := r.WriteNDJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("WriteNDJSON is not byte-deterministic")
	}
}

// TestWriteSampleNDJSON checks the incremental per-row writer matches the
// bulk writer line for line.
func TestWriteSampleNDJSON(t *testing.T) {
	r := ndjsonRecorder()
	var bulk, inc bytes.Buffer
	if err := r.WriteNDJSON(&bulk); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Samples(); i++ {
		if err := r.WriteSampleNDJSON(&inc, i); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bulk.Bytes(), inc.Bytes()) {
		t.Fatalf("incremental stream differs from bulk:\n%s\nvs\n%s", inc.String(), bulk.String())
	}
}

// TestWritePhasesNDJSON checks phase rows parse and carry the derived
// bandwidth/utilization numbers.
func TestWritePhasesNDJSON(t *testing.T) {
	phases := []PhaseUsage{
		{Name: "sort chunks", Start: 0, End: units.Microsecond,
			FarBytes: 1 << 20, NearBytes: 1 << 18,
			FarBusy: 500 * units.Nanosecond, NearBusy: 250 * units.Nanosecond,
			FarChannels: 2, NearChannels: 8},
		{Name: "(init)", Start: units.Microsecond, End: 2 * units.Microsecond},
	}
	var buf bytes.Buffer
	if err := WritePhasesNDJSON(&buf, phases); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var obj struct {
		Type    string  `json:"type"`
		Name    string  `json:"name"`
		FarGBps float64 `json:"far_gbps"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &obj); err != nil {
		t.Fatalf("phase line not valid JSON: %v\n%s", err, lines[0])
	}
	if obj.Type != "phase" || obj.Name != "sort chunks" {
		t.Fatalf("phase row = %+v", obj)
	}
	if want := phases[0].FarGBps(); obj.FarGBps != want {
		t.Fatalf("far_gbps = %v, want %v", obj.FarGBps, want)
	}
}
