// Package telemetry is the simulator's deterministic observability layer —
// the role SST's statistics subsystem plays in the paper's experimental
// setup. A Recorder collects three kinds of evidence about one replay:
//
//   - Time series: devices register named counters (probes) at machine
//     construction; an epoch sampler driven from the engine's event loop
//     reads every probe at each multiple of the epoch in simulated time.
//     Probes are pull-based closures over simulator-owned counters, so a
//     machine built without a Recorder pays nothing — no scheduled events,
//     no allocations, one nil check per event.
//
//   - Phase attribution: trace.OpPhase markers recorded by the algorithms
//     map simulated time onto algorithm phases (NMsort's pivot selection,
//     chunk sorting, and batch merging vs. the baseline's run formation and
//     merge); the machine snapshots device totals at each marker and the
//     deltas become per-phase bandwidth/utilization breakdowns (PhaseUsage).
//
//   - Discrete events: spans (barrier waits, DMA copies) and instants
//     (MemFaults) on named tracks.
//
// Everything a Recorder stores is derived from simulated time and
// simulator-owned counters inside the single-threaded event loop, so its
// exports — Chrome trace-event JSON (chrome.go) and CSV time series
// (csv.go) — are bit-identical across runs and GOMAXPROCS settings, the
// same guarantee the replay results themselves carry.
package telemetry

import (
	"repro/internal/units"
)

// probe is one registered counter: a pull closure over a device's counter.
type probe struct {
	track string // device/channel grouping, e.g. "far.ch0"
	name  string // counter name within the track, e.g. "bytes"
	fn    func() uint64
}

// phaseMark is one algorithm phase boundary.
type phaseMark struct {
	name string
	at   units.Time
}

// span is one closed interval on a named track.
type span struct {
	track, name string
	start, end  units.Time
}

// instant is one point event on a named track.
type instant struct {
	track, name string
	at          units.Time
}

// Recorder collects one replay's telemetry. Recorders are single-use (one
// machine, one replay) and single-threaded: every method runs either during
// machine construction or inside the event loop. The zero value is not
// usable; use New.
type Recorder struct {
	epoch    units.Time
	attached bool
	finished bool
	end      units.Time

	probes []probe
	times  []units.Time // sample timestamps
	values []uint64     // row-major: len(times) rows x len(probes) columns

	phases   []phaseMark
	spans    []span
	instants []instant
}

// New returns a Recorder sampling every probe at each multiple of epoch in
// simulated time. New panics on a non-positive epoch.
func New(epoch units.Time) *Recorder {
	if epoch <= 0 {
		panic("telemetry: epoch must be positive")
	}
	return &Recorder{epoch: epoch}
}

// Epoch returns the sampling resolution.
func (r *Recorder) Epoch() units.Time { return r.epoch }

// Attach marks the recorder as bound to a machine. It panics on a second
// call: a Recorder interleaving two machines' samples would be garbage.
func (r *Recorder) Attach() {
	if r.attached {
		panic("telemetry: Recorder attached to a second machine; recorders are single-use")
	}
	r.attached = true
}

// Counter registers one probe. fn must be a pure read of simulator-owned
// state; it is called once per sample epoch from inside the event loop.
// Registration order fixes column order in every export, so devices must
// register in a deterministic order (machine construction order).
func (r *Recorder) Counter(track, name string, fn func() uint64) {
	if len(r.times) > 0 {
		panic("telemetry: Counter registered after sampling started")
	}
	//nmlint:ignore hotpath probes are registered at machine construction, before sampling; Sample only reads them
	r.probes = append(r.probes, probe{track: track, name: name, fn: fn})
}

// Probes returns the number of registered counters.
func (r *Recorder) Probes() int { return len(r.probes) }

// Samples returns the number of sample rows recorded so far.
func (r *Recorder) Samples() int { return len(r.times) }

// Sample records one row: the value of every probe at simulated time t.
// The engine's sampler hook calls it at each epoch boundary — the telemetry
// fast path that the idle-overhead bench gate (<5%) protects.
//
//nmlint:hotpath
func (r *Recorder) Sample(t units.Time) {
	//nmlint:ignore hotpath amortized time-series growth; the telemetry-active cost is accepted and bench-gated
	r.times = append(r.times, t)
	for i := range r.probes {
		//nmlint:ignore hotpath amortized row growth; same telemetry-active trade as times
		r.values = append(r.values, r.probes[i].fn())
	}
}

// MarkPhase records an algorithm phase starting at time at. Phases are
// half-open: each runs until the next mark or the end of the replay.
func (r *Recorder) MarkPhase(name string, at units.Time) {
	//nmlint:ignore hotpath one append per phase marker; bounded by the trace's marker count
	r.phases = append(r.phases, phaseMark{name: name, at: at})
}

// Span records one closed interval on a track (e.g. a core's barrier wait,
// a DMA copy in flight).
func (r *Recorder) Span(track, name string, start, end units.Time) {
	//nmlint:ignore hotpath one span per barrier wait or DMA copy; telemetry-active trade, bench-gated
	r.spans = append(r.spans, span{track: track, name: name, start: start, end: end})
}

// Instant records one point event on a track (e.g. a MemFault).
func (r *Recorder) Instant(track, name string, at units.Time) {
	r.instants = append(r.instants, instant{track: track, name: name, at: at})
}

// Finish seals the recorder at the replay's end time, recording one final
// sample row there (so the last partial epoch is not lost). Finishing twice
// panics.
func (r *Recorder) Finish(end units.Time) {
	if r.finished {
		panic("telemetry: Recorder.Finish called twice")
	}
	r.finished = true
	r.end = end
	if n := len(r.times); n == 0 || r.times[n-1] < end {
		r.Sample(end)
	}
}

// End returns the replay end time recorded by Finish (zero before).
func (r *Recorder) End() units.Time { return r.end }

// row returns sample row i as a slice of len(probes) values.
func (r *Recorder) row(i int) []uint64 {
	np := len(r.probes)
	return r.values[i*np : (i+1)*np]
}

// sliceTracks returns the ordered list of non-counter track names: the
// phase track first (when phases were marked), then span and instant tracks
// in order of first appearance. The order is a pure function of recorded
// data, so exports are deterministic.
func (r *Recorder) sliceTracks() []string {
	var tracks []string
	seen := map[string]bool{}
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			tracks = append(tracks, name)
		}
	}
	if len(r.phases) > 0 {
		add(PhaseTrack)
	}
	for i := range r.spans {
		add(r.spans[i].track)
	}
	for i := range r.instants {
		add(r.instants[i].track)
	}
	return tracks
}

// PhaseTrack is the track name carrying algorithm phase slices.
const PhaseTrack = "phases"

// PhaseUsage is one algorithm phase's share of the memory traffic: the
// device-byte and busy-time deltas between consecutive phase snapshots.
// The machine produces one PhaseUsage per trace.OpPhase marker (plus an
// "(init)" head segment when the first marker arrives after time zero).
type PhaseUsage struct {
	Name       string
	Start, End units.Time

	FarBytes  uint64 // bytes through the far channels during the phase
	NearBytes uint64 // bytes through the near channels during the phase

	FarBusy  units.Time // summed far-channel busy time within the phase
	NearBusy units.Time // summed near-channel busy time within the phase

	FarChannels  int
	NearChannels int
}

// Duration returns the phase length.
func (p PhaseUsage) Duration() units.Time { return p.End - p.Start }

// FarGBps returns the phase's aggregate far-memory bandwidth in GB/s.
func (p PhaseUsage) FarGBps() float64 { return gbps(p.FarBytes, p.Duration()) }

// NearGBps returns the phase's aggregate near-memory bandwidth in GB/s.
func (p PhaseUsage) NearGBps() float64 { return gbps(p.NearBytes, p.Duration()) }

// FarUtil returns mean far-channel utilization within the phase, in [0, 1].
func (p PhaseUsage) FarUtil() float64 { return util(p.FarBusy, p.Duration(), p.FarChannels) }

// NearUtil returns mean near-channel utilization within the phase, in [0, 1].
func (p PhaseUsage) NearUtil() float64 { return util(p.NearBusy, p.Duration(), p.NearChannels) }

func gbps(bytes uint64, d units.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e9
}

func util(busy, d units.Time, channels int) float64 {
	if d <= 0 || channels <= 0 {
		return 0
	}
	return float64(busy) / (float64(d) * float64(channels))
}
