package telemetry

import (
	"bufio"
	"io"
	"strconv"
)

// WriteNDJSON streams the sampled time series as newline-delimited JSON —
// the serving layer's progress format, consumable line by line while a
// job is still replaying. One object per sample epoch:
//
//	{"type":"sample","t_ps":1000,"counters":{"far.ch0.bytes":4096,...}}
//
// followed by one object per attributed phase:
//
//	{"type":"phase","name":"merge","start_ps":0,"end_ps":1000,...}
//
// Counter keys follow probe registration order (Go's encoding/json would
// sort them — hand-encoding keeps registration order AND guarantees
// byte-determinism without reflection). Names are generated identifiers
// ("far.ch0", "bytes"), so no JSON string escaping is needed.
func (r *Recorder) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	for s := 0; s < len(r.times); s++ {
		r.appendSampleNDJSON(bw, s)
	}
	return bw.Flush()
}

// WriteSampleNDJSON writes the single sample row i — the incremental
// variant the serving layer calls between replay slices to stream rows as
// they appear.
func (r *Recorder) WriteSampleNDJSON(w io.Writer, i int) error {
	bw := bufio.NewWriterSize(w, 1<<12)
	r.appendSampleNDJSON(bw, i)
	return bw.Flush()
}

func (r *Recorder) appendSampleNDJSON(bw *bufio.Writer, s int) {
	bw.WriteString(`{"type":"sample","t_ps":`)
	bw.WriteString(strconv.FormatInt(int64(r.times[s]), 10))
	bw.WriteString(`,"counters":{`)
	for i, v := range r.row(s) {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteByte('"')
		bw.WriteString(r.probes[i].track)
		bw.WriteByte('.')
		bw.WriteString(r.probes[i].name)
		bw.WriteString(`":`)
		bw.WriteString(strconv.FormatUint(v, 10))
	}
	bw.WriteString("}}\n")
}

// WritePhasesNDJSON writes one NDJSON object per phase attribution row —
// the same numbers as the sweep phase-breakdown block, machine-readable.
// Phase names come from trace.OpPhase markers recorded by the algorithms
// ("sort chunks", "(init)", ...): no quotes or backslashes, so plain
// encoding stays valid JSON and byte-deterministic.
func WritePhasesNDJSON(w io.Writer, phases []PhaseUsage) error {
	bw := bufio.NewWriterSize(w, 1<<14)
	for _, p := range phases {
		bw.WriteString(`{"type":"phase","name":"`)
		bw.WriteString(p.Name)
		bw.WriteString(`","start_ps":`)
		bw.WriteString(strconv.FormatInt(int64(p.Start), 10))
		bw.WriteString(`,"end_ps":`)
		bw.WriteString(strconv.FormatInt(int64(p.End), 10))
		bw.WriteString(`,"far_bytes":`)
		bw.WriteString(strconv.FormatUint(p.FarBytes, 10))
		bw.WriteString(`,"near_bytes":`)
		bw.WriteString(strconv.FormatUint(p.NearBytes, 10))
		bw.WriteString(`,"far_gbps":`)
		bw.WriteString(strconv.FormatFloat(p.FarGBps(), 'g', -1, 64))
		bw.WriteString(`,"near_gbps":`)
		bw.WriteString(strconv.FormatFloat(p.NearGBps(), 'g', -1, 64))
		bw.WriteString(`,"far_util":`)
		bw.WriteString(strconv.FormatFloat(p.FarUtil(), 'g', -1, 64))
		bw.WriteString(`,"near_util":`)
		bw.WriteString(strconv.FormatFloat(p.NearUtil(), 'g', -1, 64))
		bw.WriteString("}\n")
	}
	return bw.Flush()
}
