package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/units"
)

// sampleRecorder builds a recorder exercising every event kind.
func sampleRecorder() *Recorder {
	r := New(units.Microsecond)
	var v uint64
	r.Counter("far", "reads", func() uint64 { return v })
	r.Counter("near", "writes", func() uint64 { return 3 * v })
	r.MarkPhase("p1", 0)
	r.Sample(0)
	v = 10
	r.Sample(units.Microsecond)
	r.MarkPhase("p2", 1500*units.Nanosecond)
	r.Span("core0", "barrier-wait", units.Microsecond, 2*units.Microsecond)
	r.Instant("faults", "mem_fault", 1800*units.Nanosecond)
	v = 25
	r.Finish(2 * units.Microsecond)
	return r
}

func TestExportChromeValidates(t *testing.T) {
	var b bytes.Buffer
	if err := sampleRecorder().ExportChrome(&b); err != nil {
		t.Fatal(err)
	}
	if err := ValidateChromeJSON(b.Bytes()); err != nil {
		t.Fatalf("export does not validate: %v", err)
	}
	out := b.String()
	for _, want := range []string{`"p1"`, `"p2"`, `"barrier-wait"`, `"mem_fault"`, `"far.reads"`, `"near.writes"`} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %s", want)
		}
	}
}

func TestExportChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleRecorder().ExportChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleRecorder().ExportChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical recorders exported different bytes")
	}
}

func TestExportChromeCounterDeltas(t *testing.T) {
	var b bytes.Buffer
	if err := sampleRecorder().ExportChrome(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string `json:"ph"`
			Name string `json:"name"`
			Args struct {
				Value *uint64 `json:"value"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	// far.reads is 0, 10, 25 cumulative → deltas 0, 10, 15.
	var got []uint64
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "C" && ev.Name == "far.reads" {
			if ev.Args.Value == nil {
				t.Fatal("counter event without value")
			}
			got = append(got, *ev.Args.Value)
		}
	}
	want := []uint64{0, 10, 15}
	if len(got) != len(want) {
		t.Fatalf("far.reads deltas = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("far.reads deltas = %v, want %v", got, want)
		}
	}
}

func TestChromeTs(t *testing.T) {
	cases := []struct {
		t    units.Time
		want string
	}{
		{0, "0.000000"},
		{units.Picosecond, "0.000001"},
		{units.Microsecond, "1.000000"},
		{1500 * units.Nanosecond, "1.500000"},
		{-units.Nanosecond, "0.000000"},
	}
	for _, c := range cases {
		if got := chromeTs(c.t); got != c.want {
			t.Errorf("chromeTs(%d) = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestValidateChromeJSONRejects(t *testing.T) {
	cases := []struct{ label, in string }{
		{"garbage", `not json`},
		{"no events", `{"traceEvents":[]}`},
		{"missing array", `{}`},
		{"no ph", `{"traceEvents":[{"name":"x"}]}`},
		{"no name", `{"traceEvents":[{"ph":"X"}]}`},
		{"empty name", `{"traceEvents":[{"ph":"X","name":""}]}`},
	}
	for _, c := range cases {
		if err := ValidateChromeJSON([]byte(c.in)); err == nil {
			t.Errorf("%s accepted", c.label)
		}
	}
}
