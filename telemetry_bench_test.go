package repro_test

// Replay-throughput benchmarks backing the telemetry overhead budget: the
// probe layer must cost nothing measurable when no Recorder is attached
// (scripts/bench.sh enforces idle overhead < 5% against the baseline here)
// and stay cheap when sampling is live. Each variant replays the same
// recorded trace, so the host-time deltas isolate the telemetry hooks.

import (
	"testing"

	"repro/internal/harness"
	"repro/internal/machine"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// benchReplay replays a pre-recorded NMsort trace once per iteration,
// building the machine config via mkcfg so variants can attach telemetry.
// It reports events/sec and ns/event, the replay-throughput metrics
// scripts/bench.sh extracts into BENCH_replay.json.
func benchReplay(b *testing.B, mkcfg func(w harness.Workload) machine.Config) {
	w := benchWorkload()
	rec, err := harness.Record(harness.AlgNMSort, w)
	if err != nil {
		b.Fatal(err)
	}
	var res machine.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = machine.Run(mkcfg(w), rec.Trace)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if res.Events > 0 {
		perIter := b.Elapsed().Seconds() / float64(b.N)
		b.ReportMetric(float64(res.Events)/perIter, "events/sec")
		b.ReportMetric(perIter*1e9/float64(res.Events), "ns/event")
	}
	reportSim(b, res)
}

// BenchmarkReplayBaseline is the reference: no telemetry Recorder, so the
// only cost the probe layer may add is one nil check per event.
func BenchmarkReplayBaseline(b *testing.B) {
	benchReplay(b, func(w harness.Workload) machine.Config {
		return harness.NodeFor(w.Threads, 16, w.SP)
	})
}

// BenchmarkReplayTelemetryIdle attaches a Recorder whose epoch exceeds any
// plausible simulated runtime: every hook is wired but almost no samples
// fire. This is the "<5% overhead" acceptance bound.
func BenchmarkReplayTelemetryIdle(b *testing.B) {
	benchReplay(b, func(w harness.Workload) machine.Config {
		cfg := harness.NodeFor(w.Threads, 16, w.SP)
		cfg.Telemetry = telemetry.New(units.Time(1) << 60)
		return cfg
	})
}

// BenchmarkReplayTelemetryActive samples every 10µs of simulated time —
// the default nmsim -telemetry-epoch — to price live time-series capture.
func BenchmarkReplayTelemetryActive(b *testing.B) {
	benchReplay(b, func(w harness.Workload) machine.Config {
		cfg := harness.NodeFor(w.Threads, 16, w.SP)
		cfg.Telemetry = telemetry.New(10 * units.Microsecond)
		return cfg
	})
}

// BenchmarkReplayShards1 runs the conservative sharded engine at a single
// shard: all the window/mailbox/batch-merge machinery with no parallelism,
// isolating its bookkeeping cost over the sequential engine (the Baseline
// benchmark above).
func BenchmarkReplayShards1(b *testing.B) {
	benchReplay(b, func(w harness.Workload) machine.Config {
		cfg := harness.NodeFor(w.Threads, 16, w.SP)
		cfg.Shards = 1
		return cfg
	})
}

// BenchmarkReplayShards4 shards the replay four ways with a live worker
// pool — the intra-replay speedup (or honest lack of it) scripts/bench.sh
// records in BENCH_replay.json. Run with GOMAXPROCS >= 4 for a meaningful
// number.
func BenchmarkReplayShards4(b *testing.B) {
	benchReplay(b, func(w harness.Workload) machine.Config {
		cfg := harness.NodeFor(w.Threads, 16, w.SP)
		cfg.Shards = 4
		return cfg
	})
}
